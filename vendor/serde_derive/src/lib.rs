//! Offline stand-in for `serde_derive`. Parses the item's token stream
//! directly (no `syn`/`quote` — those aren't available offline) and
//! emits `Serialize`/`Deserialize` impls matching real serde's data
//! model: structs as `serialize_struct`/`deserialize_struct` visited as
//! sequences, enums tagged by `u32` variant index, one-field tuple
//! variants treated as newtype variants.
//!
//! Deliberate limits, sufficient for this workspace: no generic types,
//! no `#[serde(...)]` attributes (accepted but ignored), no unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

fn is_punct(token: &TokenTree, ch: char) -> bool {
    matches!(token, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(token: &TokenTree, text: &str) -> bool {
    matches!(token, TokenTree::Ident(id) if id.to_string() == text)
}

fn ident_text(token: &TokenTree) -> String {
    match token {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive stub: expected identifier, found `{other}`"),
    }
}

/// Advance past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // '#' then the bracketed group
        } else if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if let Some(TokenTree::Group(group)) = tokens.get(i) {
                if group.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            return i;
        }
    }
}

/// Advance past a type, stopping after the `,` that ends it (or at end
/// of input). Groups are atomic tokens, so only `<`/`>` need balancing;
/// `->` must not close an angle bracket.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            let ch = p.as_char();
            match ch {
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
            prev_dash = ch == '-';
        } else {
            prev_dash = false;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        fields.push(ident_text(&tokens[i]));
        i += 1; // field name
        i += 1; // ':'
        i = skip_type(&tokens, i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]);
        i += 1;
        let mut fields = Fields::Unit;
        if let Some(TokenTree::Group(group)) = tokens.get(i) {
            match group.delimiter() {
                Delimiter::Parenthesis => {
                    fields = Fields::Tuple(count_tuple_fields(group.stream()));
                    i += 1;
                }
                Delimiter::Brace => {
                    fields = Fields::Named(parse_named_fields(group.stream()));
                    i += 1;
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant (`= expr`) up to the separator.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1; // ','
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = ident_text(&tokens[i]);
    i += 1;
    let name = ident_text(&tokens[i]);
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde derive stub: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let kind = match tokens.get(i) {
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                    Kind::Struct(Fields::Named(parse_named_fields(group.stream())))
                }
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                    Kind::Struct(Fields::Tuple(count_tuple_fields(group.stream())))
                }
                _ => Kind::Struct(Fields::Unit),
            };
            Input { name, kind }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Input { name, kind: Kind::Enum(parse_variants(group.stream())) }
            }
            _ => panic!("serde derive stub: malformed enum `{name}`"),
        },
        other => panic!("serde derive stub: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen.
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for field in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            out
        }
        Kind::Struct(Fields::Tuple(arity)) => {
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {arity}usize)?;\n"
            );
            for idx in 0..*arity {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__state)\n");
            out
        }
        Kind::Struct(Fields::Unit) => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n")
        }
        Kind::Enum(variants) => {
            let mut out = String::from("match self {\n");
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => out.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|j| format!("__f{j}")).collect();
                        out.push_str(&format!(
                            "{name}::{vname}({}) => {{\nlet mut __sv = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {arity}usize)?;\n",
                            binders.join(", ")
                        ));
                        for binder in &binders {
                            out.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __sv, {binder})?;\n"
                            ));
                        }
                        out.push_str("::serde::ser::SerializeTupleVariant::end(__sv)\n}\n");
                    }
                    Fields::Named(fields) => {
                        out.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __sv = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        ));
                        for field in fields {
                            out.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{field}\", {field})?;\n"
                            ));
                        }
                        out.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n}\n");
                    }
                }
            }
            out.push_str("}\n");
            out
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen.
// ---------------------------------------------------------------------------

/// `let <binding> = next element of __seq, or a missing-field error;`
fn seq_element(binding: &str, missing: &str) -> String {
    format!(
        "let {binding} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
         ::core::option::Option::Some(__value) => __value,\n\
         ::core::option::Option::None => return ::core::result::Result::Err(::serde::de::Error::missing_field(\"{missing}\")),\n\
         }};\n"
    )
}

/// A visitor struct (named `visitor_name`) whose `visit_seq` pulls the
/// given bindings in order and finishes with `construct`.
fn seq_visitor(visitor_name: &str, value_type: &str, expecting: &str, elements: &str, construct: &str) -> String {
    format!(
        "struct {visitor_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor_name} {{\n\
         type Value = {value_type};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
         __f.write_str(\"{expecting}\")\n\
         }}\n\
         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> ::core::result::Result<{value_type}, __A::Error> {{\n\
         {elements}\
         ::core::result::Result::Ok({construct})\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let elements: String =
                fields.iter().map(|f| seq_element(f, f)).collect();
            let construct = format!("{name} {{ {} }}", fields.join(", "));
            let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            format!(
                "{}\
                 ::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __FieldsVisitor)\n",
                seq_visitor("__FieldsVisitor", name, &format!("struct {name}"), &elements, &construct),
                field_list.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(arity)) => {
            let elements: String = (0..*arity)
                .map(|j| seq_element(&format!("__f{j}"), &j.to_string()))
                .collect();
            let binders: Vec<String> = (0..*arity).map(|j| format!("__f{j}")).collect();
            let construct = format!("{name}({})", binders.join(", "));
            format!(
                "{}\
                 ::serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {arity}usize, __FieldsVisitor)\n",
                seq_visitor("__FieldsVisitor", name, &format!("tuple struct {name}"), &elements, &construct)
            )
        }
        Kind::Struct(Fields::Unit) => format!(
            "struct __UnitVisitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __UnitVisitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n\
             }}\n\
             fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
             ::core::result::Result::Ok({name})\n\
             }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __UnitVisitor)\n"
        ),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname})\n\
                         }}\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => ::core::result::Result::map(::serde::de::VariantAccess::newtype_variant(__variant), {name}::{vname}),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let elements: String = (0..*arity)
                            .map(|j| seq_element(&format!("__f{j}"), &j.to_string()))
                            .collect();
                        let binders: Vec<String> = (0..*arity).map(|j| format!("__f{j}")).collect();
                        let construct = format!("{name}::{vname}({})", binders.join(", "));
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             {}\
                             ::serde::de::VariantAccess::tuple_variant(__variant, {arity}usize, __Variant{idx}Visitor)\n\
                             }}\n",
                            seq_visitor(
                                &format!("__Variant{idx}Visitor"),
                                name,
                                &format!("tuple variant {name}::{vname}"),
                                &elements,
                                &construct
                            )
                        ));
                    }
                    Fields::Named(fields) => {
                        let elements: String =
                            fields.iter().map(|f| seq_element(f, f)).collect();
                        let construct =
                            format!("{name}::{vname} {{ {} }}", fields.join(", "));
                        let field_list: Vec<String> =
                            fields.iter().map(|f| format!("\"{f}\"")).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             {}\
                             ::serde::de::VariantAccess::struct_variant(__variant, &[{}], __Variant{idx}Visitor)\n\
                             }}\n",
                            seq_visitor(
                                &format!("__Variant{idx}Visitor"),
                                name,
                                &format!("struct variant {name}::{vname}"),
                                &elements,
                                &construct
                            ),
                            field_list.join(", ")
                        ));
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            format!(
                "struct __EnumVisitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __EnumVisitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
                 }}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) -> ::core::result::Result<{name}, __A::Error> {{\n\
                 let (__index, __variant) = ::serde::de::EnumAccess::variant::<u32>(__data)?;\n\
                 match __index {{\n\
                 {arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(::core::format_args!(\"invalid variant index {{__other}} for enum {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{}], __EnumVisitor)\n",
                variant_names.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde derive stub: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde derive stub: generated Deserialize impl failed to parse")
}
