//! Offline stand-in for `parking_lot`: non-poisoning [`RwLock`] and
//! [`Mutex`] wrappers over `std::sync`. A poisoned std lock (a panicking
//! holder) is treated as released, matching parking_lot's semantics.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let lock = Mutex::new(vec![1]);
        lock.lock().push(2);
        assert_eq!(lock.into_inner(), vec![1, 2]);
    }
}
