//! Offline stand-in for `crossbeam`'s scoped threads, layered over
//! `std::thread::scope` but keeping crossbeam 0.8's calling convention:
//! `crossbeam::scope(|s| ...)` returns a `Result`, spawn closures receive
//! the scope as an argument, and `join` reports per-thread panics.

#![warn(missing_docs)]

use std::any::Any;

/// Spawn scope handed to the closure passed to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread, returning its result or the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the
    /// scope itself (for nested spawns); most callers ignore it (`|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before
/// returning. Returns `Err` only if the closure itself panicked through
/// an unjoined thread — matching crossbeam, a caller that joins every
/// handle sees `Ok`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let result = super::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
