//! Offline stand-in for `criterion`: a minimal wall-clock benchmarking
//! harness exposing the criterion 0.5 surface the workspace's benches use
//! (`Criterion`, `BenchmarkId`, groups, `criterion_group!`/
//! `criterion_main!`). Each benchmark runs a short warmup, then
//! `sample_size` timed samples of an adaptively chosen batch, reporting
//! the median per-iteration time. No statistics beyond that — the point
//! is comparable numbers from `cargo bench` without the crates.io
//! dependency tree.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the batch size the harness chose.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// Parameter-only id (criterion prefixes the group name on output).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// One measured benchmark: calibrate a batch size targeting ~5 ms per
/// sample, run `samples` batches, report the median per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut routine: F) {
    // Calibration pass: one iteration, to size the batches.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut bencher);
    let once = bencher.elapsed.as_nanos().max(1) as u64;
    let target_ns = 5_000_000u64;
    let iters = (target_ns / once).clamp(1, 10_000);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut bencher);
        per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!("bench: {id:<50} median {:>12}   best {:>12}", format_time(median), format_time(best));
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_benchmark(id, self.sample_size, routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Criterion's post-run hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.criterion.sample_size, |b| routine(b, input));
        self
    }

    /// Run one plain benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.criterion.sample_size, routine);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group the way criterion does. Both the flat form
/// `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group!{name = benches; config = ...; targets = f, g}` are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default().sample_size(3);
        quick_target(&mut criterion);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("fit", 32).to_string(), "fit/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
