//! Offline stand-in for `serde`: the core data-model traits
//! (`Serialize`/`Serializer`, `Deserialize`/`Deserializer`, the access
//! traits, and impls for the std types this workspace serializes). The
//! trait surface mirrors serde 1.x closely enough that the workspace's
//! hand-written binary codec (`crates/core/src/codec.rs`) and the
//! `serde_derive` stand-in compile unchanged against it.

pub mod ser;
pub mod de;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Macros live in a separate namespace from the traits, so re-exporting
// both under the same names matches real serde's facade.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use crate::de::{self, IntoDeserializer, Visitor};
    use crate::ser::Error as _;

    #[derive(Debug)]
    struct TestError(String);

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl crate::ser::Error for TestError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }

    impl de::Error for TestError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }

    #[test]
    fn error_custom_formats() {
        let err = TestError::custom(format_args!("bad {}", 7));
        assert_eq!(err.0, "bad 7");
    }

    #[test]
    fn u32_into_deserializer_visits_u32() {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = u32;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("u32")
            }
            fn visit_u32<E: de::Error>(self, v: u32) -> Result<u32, E> {
                Ok(v)
            }
        }
        let d: de::value::U32Deserializer<TestError> = 9u32.into_deserializer();
        let got = crate::Deserializer::deserialize_u32(d, V).unwrap();
        assert_eq!(got, 9);
    }
}
