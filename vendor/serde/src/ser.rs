//! Serialization half of the data model: `Serialize`, `Serializer`, and
//! the seven compound-serialization helper traits.

use std::fmt::{Debug, Display};

/// Error produced by a `Serializer`.
pub trait Error: Sized + Debug + Display {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;

    /// Helper for serializing sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Helper for serializing struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct like `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin serializing a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin serializing a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether this format is human readable (binary formats say no).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Incremental sequence serialization.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental tuple serialization.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental tuple-struct serialization.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental tuple-variant serialization.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental map serialization.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize the value paired with the last key.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serialize a key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental struct serialization.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental struct-variant serialization.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_primitive {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_ser_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

// Portable width-independent encodings for the pointer-sized integers.
impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let len = impl_ser_tuple!(@count $($name)+);
                    let mut tuple = serializer.serialize_tuple(len)?;
                    $( tuple.serialize_element(&self.$idx)?; )+
                    tuple.end()
                }
            }
        )*
    };
    (@count $($name:ident)+) => { [$(impl_ser_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_ser_tuple! {
    (T0: 0),
    (T0: 0, T1: 1),
    (T0: 0, T1: 1, T2: 2),
    (T0: 0, T1: 1, T2: 2, T3: 3),
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}
