//! Deserialization half of the data model: `Deserialize`,
//! `Deserializer`, `Visitor`, the access traits, and impls for the std
//! types this workspace deserializes.

use std::fmt::{self, Debug, Display};
use std::marker::PhantomData;

/// Error produced by a `Deserializer`.
pub trait Error: Sized + Debug + Display {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A sequence or tuple had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// An enum variant index or name was not recognized.
    fn unknown_variant(variant: &str, _expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown variant `{variant}`"))
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the
/// stateless seed used by the provided `next_element`/`next_value`.
pub trait DeserializeSeed<'de>: Sized {
    /// The type produced.
    type Value;
    /// Deserialize with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Self-describing formats dispatch on the input; binary formats
    /// reject this.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a borrowed or transient string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize transient bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct field name or map key.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip over a value.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Whether this format is human readable (binary formats say no).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Walks the values a `Deserializer` produces. Every `visit_*` defaults
/// to a type-mismatch error so visitors implement only what they expect.
pub trait Visitor<'de>: Sized {
    /// The type this visitor produces.
    type Value;

    /// Describe what the visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visit a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bool `{v}`")))
    }
    /// Visit an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("integer `{v}`")))
    }
    /// Visit a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("integer `{v}`")))
    }
    /// Visit an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visit an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("float `{v}`")))
    }
    /// Visit a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let mut buf = [0u8; 4];
        self.visit_str(v.encode_utf8(&mut buf))
    }
    /// Visit a transient string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("string {v:?}")))
    }
    /// Visit a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visit an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visit transient bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bytes")))
    }
    /// Visit bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Visit an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visit an absent `Option`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("none")))
    }
    /// Visit a present `Option`.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, format_args!("some")))
    }
    /// Visit `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("unit")))
    }
    /// Visit a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, format_args!("newtype struct")))
    }
    /// Visit a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("sequence")))
    }
    /// Visit a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("map")))
    }
    /// Visit an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("enum")))
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, what: fmt::Arguments<'_>) -> E {
    struct Expecting<'a, V>(&'a V);
    impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format_args!("unexpected {what}, expected {}", Expecting(visitor)))
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error produced on failure.
    type Error: Error;
    /// Deserialize the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error produced on failure.
    type Error: Error;
    /// Deserialize the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserialize the value paired with the last key, with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Deserialize the value paired with the last key.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Deserialize the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum, then its contents.
pub trait EnumAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Gives access to the chosen variant's contents.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserialize the variant tag with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// The variant carries no data.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// The variant carries one value; deserialize it with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// The variant carries one value.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// The variant carries a tuple of values.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;
    /// The variant carries named fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Convert a value into a `Deserializer` yielding that value — used by
/// binary formats to hand a decoded variant index to a seed.
pub trait IntoDeserializer<'de, E: Error = value::PlainError> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Perform the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Value-as-deserializer adapters.
pub mod value {
    use super::*;

    /// Minimal string-message error for standalone value deserializers.
    #[derive(Debug)]
    pub struct PlainError(String);

    impl Display for PlainError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for PlainError {}

    impl Error for PlainError {
        fn custom<T: Display>(msg: T) -> Self {
            PlainError(msg.to_string())
        }
    }

    macro_rules! forward_to_visit {
        ($visit:ident, $($method:ident),* $(,)?) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }
            )*
        };
    }

    macro_rules! primitive_deserializer {
        ($name:ident, $ty:ty, $visit:ident) => {
            /// Deserializer that yields one primitive value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                /// Wrap a value.
                pub fn new(value: $ty) -> Self {
                    Self { value, marker: PhantomData }
                }
            }

            impl<'de, E: Error> Deserializer<'de> for $name<E> {
                type Error = E;

                forward_to_visit!(
                    $visit,
                    deserialize_any,
                    deserialize_bool,
                    deserialize_i8,
                    deserialize_i16,
                    deserialize_i32,
                    deserialize_i64,
                    deserialize_u8,
                    deserialize_u16,
                    deserialize_u32,
                    deserialize_u64,
                    deserialize_f32,
                    deserialize_f64,
                    deserialize_char,
                    deserialize_str,
                    deserialize_string,
                    deserialize_bytes,
                    deserialize_byte_buf,
                    deserialize_option,
                    deserialize_unit,
                    deserialize_seq,
                    deserialize_map,
                    deserialize_identifier,
                    deserialize_ignored_any,
                );

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                fn is_human_readable(&self) -> bool {
                    false
                }
            }
        };
    }

    primitive_deserializer!(U32Deserializer, u32, visit_u32);
    primitive_deserializer!(U64Deserializer, u64, visit_u64);
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;
    fn into_deserializer(self) -> Self::Deserializer {
        value::U32Deserializer::new(self)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u64 {
    type Deserializer = value::U64Deserializer<E>;
    fn into_deserializer(self) -> Self::Deserializer {
        value::U64Deserializer::new(self)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_de_primitive {
    ($($ty:ty => $deserialize:ident / $visit:ident ($argty:ty),)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($ty))
                        }
                        fn $visit<E: Error>(self, v: $argty) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.$deserialize(PrimitiveVisitor)
                }
            }
        )*
    };
}

impl_de_primitive! {
    bool => deserialize_bool / visit_bool (bool),
    i8 => deserialize_i8 / visit_i8 (i8),
    i16 => deserialize_i16 / visit_i16 (i16),
    i32 => deserialize_i32 / visit_i32 (i32),
    i64 => deserialize_i64 / visit_i64 (i64),
    u8 => deserialize_u8 / visit_u8 (u8),
    u16 => deserialize_u16 / visit_u16 (u16),
    u32 => deserialize_u32 / visit_u32 (u32),
    u64 => deserialize_u64 / visit_u64 (u64),
    f32 => deserialize_f32 / visit_f32 (f32),
    f64 => deserialize_f64 / visit_f64 (f64),
    char => deserialize_char / visit_char (char),
    usize => deserialize_u64 / visit_u64 (u64),
    isize => deserialize_i64 / visit_i64 (i64),
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Visitor<'de>
            for ArrayVisitor<T, N>
        {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut values = [T::default(); N];
                for (index, slot) in values.iter_mut().enumerate() {
                    *slot = seq
                        .next_element()?
                        .ok_or_else(|| A::Error::invalid_length(index, &N))?;
                }
                Ok(values)
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr => $($name:ident),+),)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(concat!("a tuple of length ", $len))
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            let mut index = 0usize;
                            $(
                                let $name = seq
                                    .next_element()?
                                    .ok_or_else(|| A::Error::invalid_length(index, &$len))?;
                                index += 1;
                            )+
                            let _ = index;
                            Ok(($($name,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

impl_de_tuple! {
    (1 => T0),
    (2 => T0, T1),
    (3 => T0, T1, T2),
    (4 => T0, T1, T2, T3),
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = std::collections::HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = std::collections::BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}
