//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the surface the workspace uses: a seeded
//! deterministic [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] traits
//! with `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong, tiny,
//! and reproducible across platforms. Streams differ from the upstream
//! `rand` crate (which is fine: every consumer in this workspace only
//! relies on *seeded reproducibility*, never on specific draws).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the only constructor the workspace uses is
/// [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value uniformly over the type's standard domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (unit_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform value over the type's standard domain (`u64`/`u32`: all
    /// bits; `f64`: `[0, 1)`; `bool`: fair coin).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (drop-in for `rand::rngs::StdRng` in seeded use).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl StdRng {
        /// Snapshot the raw xoshiro256++ state for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this lets a consumer
        /// persist a generator mid-stream and resume it later with the
        /// exact same future draws — required for bit-identical
        /// resume-after-crash replay.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
