//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable immutable buffer), [`BytesMut`]
//! (growable builder), and the [`Buf`]/[`BufMut`] accessor traits for the
//! little-endian primitive reads/writes the workspace's binary codec
//! performs. Only the surface actually used is implemented.

#![warn(missing_docs)]

use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

/// Growable byte buffer used to build a [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian reads from a byte source.
///
/// # Panics
/// All accessors panic when the source has too few bytes remaining
/// (callers bound-check first, as the upstream crate requires).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Advance past `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read one `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `i16`.
    fn get_i16_le(&mut self) -> i16 {
        i16::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Read a fixed-size array (helper for the typed accessors).
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = BytesMut::with_capacity(64);
        out.put_u8(7);
        out.put_i8(-7);
        out.put_u16_le(300);
        out.put_i16_le(-300);
        out.put_u32_le(70_000);
        out.put_i32_le(-70_000);
        out.put_u64_le(1 << 40);
        out.put_i64_le(-(1 << 40));
        out.put_f32_le(1.5);
        out.put_f64_le(-2.25);
        out.put_slice(b"xyz");
        let frozen = out.freeze();
        let mut buf: &[u8] = &frozen;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_i8(), -7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_i16_le(), -300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_i32_le(), -70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_i64_le(), -(1 << 40));
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.get_f64_le(), -2.25);
        assert_eq!(buf, b"xyz");
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let bytes = Bytes::from(vec![1, 2, 3]);
        let clone = bytes.clone();
        assert_eq!(bytes, clone);
        assert_eq!(&*bytes, &[1, 2, 3]);
        assert_eq!(bytes.len(), 3);
    }
}
