//! Quickstart: train a PCC model on a synthetic SCOPE workload and pick
//! optimal token allocations for new jobs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scope_sim::{WorkloadConfig, WorkloadGenerator};
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    AllocationDecision, JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig,
    ScoringService, TasqPipeline,
};

fn main() {
    // 1. A "historical workload": 300 jobs that already ran on the cluster.
    println!("generating historical workload...");
    let history = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 300,
        seed: 42,
        ..Default::default()
    })
    .generate();
    let repository = JobRepository::new();
    repository.ingest(history);

    // 2. Train the TASQ pipeline: execute each job once, augment with
    //    AREPAS, featurize, train, and register model artifacts.
    println!("training TASQ pipeline on {} jobs...", repository.len());
    let store = ModelStore::new();
    let pipeline = TasqPipeline::new(PipelineConfig {
        nn: NnTrainConfig { epochs: 120, ..Default::default() },
        xgb: XgbTrainConfig { num_rounds: 120, ..Default::default() },
        ..Default::default()
    });
    let dataset = pipeline.train(&repository, &store).expect("non-empty repository trains");
    println!("prepared {} training examples\n", dataset.len());

    // 3. Deploy the NN-based scoring service and score incoming jobs.
    let service = ScoringService::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
        .expect("artifacts registered");
    let incoming = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 10,
        seed: 777,
        ..Default::default()
    })
    .generate();

    println!(
        "{:<6} {:>10} {:>14} {:>16} {:>10}",
        "job", "requested", "pred. runtime", "optimal tokens", "saving"
    );
    for job in &incoming {
        let response = service.score(job);
        let AllocationDecision::Automatic { tokens } = response.decision else {
            unreachable!("automatic mode configured")
        };
        let saving = 1.0 - tokens as f64 / job.requested_tokens as f64;
        println!(
            "{:<6} {:>10} {:>13.0}s {:>16} {:>9.0}%",
            job.id,
            job.requested_tokens,
            response.predicted_runtime_at_request,
            tokens,
            saving * 100.0
        );
    }
    println!("\nDone: each incoming job was scored at compile time — no execution needed.");
}
