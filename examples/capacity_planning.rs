//! Capacity planning: a workload-level what-if study. Given a fleet of
//! jobs, how many tokens does the cluster save — and how much slower does
//! the workload get — if every job runs at its TASQ-predicted optimal
//! allocation instead of its requested default?
//!
//! This is the operator-facing version of the paper's Section 5.4
//! analysis.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use scope_sim::{ExecutionConfig, WorkloadConfig, WorkloadGenerator};
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::models::{NnPcc, NnTrainConfig, PccPredictor, ScoringInput};

fn main() {
    // History to learn from, and tomorrow's fleet to plan for.
    let mut all = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 360,
        seed: 2022,
        ..Default::default()
    })
    .generate();
    let fleet = all.split_off(300);
    let history = all;

    println!("training on {} historical jobs...", history.len());
    let train = Dataset::build(&history, &AugmentConfig::default());
    let model = NnPcc::train(&train, &NnTrainConfig { epochs: 150, ..Default::default() });

    // Score tomorrow's fleet and compare default vs optimal allocations by
    // actually executing both (the simulator is our cluster).
    let mut default_tokens = 0.0;
    let mut optimal_tokens = 0.0;
    let mut default_time = 0.0;
    let mut optimal_time = 0.0;
    let config = ExecutionConfig::default();

    println!("planning {} fleet jobs...\n", fleet.len());
    for job in &fleet {
        let example =
            Dataset::prepare_example(job, &AugmentConfig::default()).expect("featurizable");
        let input = ScoringInput {
            features: &example.features,
            op_features: &example.op_features,
            reference_tokens: job.requested_tokens,
        };
        let pcc = model.predict(&input).power_law().expect("NN predicts a power law");
        // Optimal: last token with >= 0.5% marginal gain, capped at request.
        let optimal = pcc.optimal_tokens(0.005, 1, job.requested_tokens);

        let executor = job.executor();
        let at_default = executor.run(job.requested_tokens, &config).expect("fault-free execution cannot fail");
        let at_optimal = executor.run(optimal, &config).expect("fault-free execution cannot fail");

        default_tokens += job.requested_tokens as f64;
        optimal_tokens += optimal as f64;
        default_time += at_default.runtime_secs;
        optimal_time += at_optimal.runtime_secs;
    }

    let token_saving = 1.0 - optimal_tokens / default_tokens;
    let slowdown = optimal_time / default_time - 1.0;
    println!("fleet summary ({} jobs):", fleet.len());
    println!("  tokens requested (default policy):   {default_tokens:>10.0}");
    println!("  tokens requested (TASQ optimal):     {optimal_tokens:>10.0}");
    println!("  token saving:                        {:>9.1}%", token_saving * 100.0);
    println!("  total runtime at default:            {default_time:>9.0}s");
    println!("  total runtime at optimal:            {optimal_time:>9.0}s");
    println!("  workload slowdown:                   {:>9.1}%", slowdown * 100.0);
    println!(
        "\nTrade-off: {:.0}% of the fleet's tokens bought back for a {:.1}% slowdown.",
        token_saving * 100.0,
        slowdown * 100.0
    );
}
