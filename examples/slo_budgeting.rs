//! SLO budgeting: allocate each job the cheapest token grant whose
//! *calibrated* run-time prediction still meets its deadline.
//!
//! The PCC is monotone, so the minimal feasible allocation has a closed
//! form; a conformal safety factor (the P90 of actual/predicted ratios on
//! a small flighted calibration set) turns best-effort predictions into a
//! reliability knob.
//!
//! ```sh
//! cargo run --release --example slo_budgeting
//! ```

use scope_sim::flight::{flight_job, FlightConfig};
use scope_sim::{ExecutionConfig, NoiseModel, WorkloadConfig, WorkloadGenerator};
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::models::{NnPcc, NnTrainConfig};
use tasq::slo::{allocate_for_slo_with_pcc, calibration_factor, SloDecision};

fn main() {
    // Train on history.
    let mut all = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 360,
        seed: 99,
        ..Default::default()
    })
    .generate();
    let incoming = all.split_off(300);
    let history = all;
    println!("training on {} historical jobs...", history.len());
    let train = Dataset::build(&history, &AugmentConfig::default());
    let model = NnPcc::train(&train, &NnTrainConfig { epochs: 150, ..Default::default() });

    // Calibrate on a handful of flighted jobs (ground truth at several
    // allocations, as in the paper's Section 5.1 methodology).
    println!("calibrating against 12 flighted jobs...");
    let flight_config =
        FlightConfig { noise: NoiseModel::mild(), seed: 99, ..Default::default() };
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    for (job, example) in history.iter().zip(&train.examples).take(12) {
        let pcc = model.predict_pcc(&example.features);
        for flight in
            flight_job(job, job.requested_tokens, &flight_config).expect("flights").flights
        {
            predicted.push(pcc.predict(flight.allocation));
            actual.push(flight.runtime_secs.max(1.0));
        }
    }
    let safety = calibration_factor(&predicted, &actual, 0.9);
    println!("P90 safety factor: {safety:.2}x\n");

    // Budget each incoming job against a 2x-usual deadline.
    let config = ExecutionConfig::default();
    let mut met = 0usize;
    let mut attempted = 0usize;
    println!(
        "{:<6} {:>9} {:>10} {:>9} {:>10} {:>7}",
        "job", "request", "deadline", "grant", "actual", "met?"
    );
    for job in incoming.iter().take(15) {
        let example =
            Dataset::prepare_example(job, &AugmentConfig::default()).expect("featurizable");
        let deadline = example.observed_runtime * 2.0;
        let pcc = model.predict_pcc(&example.features);
        let min_tokens = (job.requested_tokens / 5).max(1);
        match allocate_for_slo_with_pcc(&pcc, safety, deadline, min_tokens, job.requested_tokens)
        {
            SloDecision::Feasible { tokens, .. } => {
                attempted += 1;
                let runtime = job.executor().run(tokens, &config).expect("fault-free execution cannot fail").runtime_secs;
                let ok = runtime <= deadline;
                met += ok as usize;
                println!(
                    "{:<6} {:>9} {:>9.0}s {:>9} {:>9.0}s {:>7}",
                    job.id,
                    job.requested_tokens,
                    deadline,
                    tokens,
                    runtime,
                    if ok { "yes" } else { "MISS" }
                );
            }
            SloDecision::Infeasible { best_runtime } => {
                println!(
                    "{:<6} {:>9} {:>9.0}s {:>9} {:>9.0}s {:>7}",
                    job.id, job.requested_tokens, deadline, "-", best_runtime, "escal."
                );
            }
        }
    }
    println!(
        "\n{met}/{attempted} allocated jobs met their deadline \
         (infeasible jobs were escalated, not silently missed)."
    );
}
