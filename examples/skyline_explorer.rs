//! Skyline explorer: execute one job of each archetype, render its
//! resource skyline, and show AREPAS simulations at reduced allocations —
//! the paper's Figures 5–8 as an interactive-style tour.
//!
//! ```sh
//! cargo run --release --example skyline_explorer
//! ```

use arepas::simulate;
use scope_sim::{Archetype, ExecutionConfig, Skyline, WorkloadConfig, WorkloadGenerator};

fn main() {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 400,
        seed: 7,
        ..Default::default()
    })
    .generate();

    for archetype in Archetype::ALL {
        let Some(job) = jobs
            .iter()
            .find(|j| j.meta.archetype == archetype && (30..=300).contains(&j.requested_tokens))
        else {
            continue;
        };
        let result = job
            .executor()
            .run(job.requested_tokens, &ExecutionConfig::default())
            .expect("fault-free execution cannot fail");
        let skyline = &result.skyline;
        println!("\n==============================================================");
        println!(
            "{archetype:?} (job {}): {} tokens requested, peak {:.0}, runtime {:.0}s, \
             peakiness {:.2}",
            job.id,
            job.requested_tokens,
            skyline.peak(),
            result.runtime_secs,
            skyline.peakiness()
        );
        println!("{}", skyline.ascii_plot(64, 8));

        // How does this job respond to losing half its tokens?
        let half = (job.requested_tokens as f64 / 2.0).max(1.0);
        let sim = simulate(skyline.samples(), half);
        let slowdown = sim.runtime_secs() as f64 / skyline.runtime_secs() as f64;
        println!(
            "at 50% allocation ({half:.0} tokens): runtime {}s ({slowdown:.2}x), \
             area preserved: {:.0} -> {:.0} token-seconds",
            sim.runtime_secs(),
            skyline.area(),
            sim.area()
        );
        println!("{}", Skyline::new(sim.samples.clone()).ascii_plot(64, 8));
    }

    println!("\nPeaky archetypes (LogMining, StarJoinAgg, ReportingRollup) tolerate");
    println!("the 50% cut with small slowdowns; flat ones (DataCopy, Featurization)");
    println!("slow down by nearly 2x — the paper's Figure 8 observation.");
}
