//! Flighting study: reproduce the paper's Section 5.1 methodology end to
//! end — select a representative job subset with stratified sampling,
//! re-execute each job at multiple token counts under cluster noise,
//! filter anomalies, and validate AREPAS against the ground truth.
//!
//! ```sh
//! cargo run --release --example flighting_study
//! ```

use arepas::{simulate_runtime, ErrorSummary};
use scope_sim::flight::{filter_non_anomalous, flight_job, FlightConfig};
use scope_sim::{NoiseModel, WorkloadConfig, WorkloadGenerator};
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::selection::{select_jobs, SelectionConfig};

fn main() {
    // The "population": a day of jobs.
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 400,
        seed: 11,
        ..Default::default()
    })
    .generate();
    println!("population: {} jobs; preparing features...", jobs.len());
    let dataset = Dataset::build(&jobs, &AugmentConfig::default());

    // Step 1-4: filter, cluster, stratify, KS-check.
    let selection = select_jobs(
        &dataset,
        &SelectionConfig { sample_size: 30, seed: 11, ..Default::default() },
    );
    println!(
        "selected {} jobs; KS vs population: pool D={:.3}, selected D={:.3}",
        selection.selected.len(),
        selection.ks_pool.statistic,
        selection.ks_selected.statistic
    );

    // Flight each selected job at 100/80/60/20% of its request, three
    // repetitions each, with mild production noise.
    let flight_config = FlightConfig { noise: NoiseModel::mild(), seed: 11, ..Default::default() };
    let flighted: Vec<_> = selection
        .selected
        .iter()
        .map(|&i| {
            let job = jobs
                .iter()
                .find(|j| j.id == dataset.examples[i].job_id)
                .expect("selected job");
            flight_job(job, job.requested_tokens, &flight_config)
                .expect("fault-free flighting cannot fail")
        })
        .collect();
    let total_flights: usize = flighted.iter().map(|f| f.flights.len()).sum();
    println!("flighted {total_flights} runs across {} jobs", flighted.len());

    let clean = filter_non_anomalous(flighted, 0.10);
    println!("{} jobs pass the non-anomalous filters", clean.len());

    // Validate AREPAS: simulate from the largest-allocation skyline and
    // compare with the actual lower-allocation flights.
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    for fj in &clean {
        let reference = fj
            .executions
            .iter()
            .max_by_key(|e| e.allocation)
            .expect("jobs have executions");
        for execution in &fj.executions {
            if execution.allocation == reference.allocation {
                continue;
            }
            predicted.push(simulate_runtime(
                reference.skyline.samples(),
                execution.allocation as f64,
            ) as f64);
            actual.push(execution.runtime_secs);
        }
    }
    let summary = ErrorSummary::from_pairs(&predicted, &actual);
    println!(
        "\nAREPAS vs ground truth over {} re-executions:\n  \
         MedianAPE {:.1}%  MeanAPE {:.1}%  worst {:.1}%",
        summary.n,
        summary.median_ape * 100.0,
        summary.mean_ape * 100.0,
        summary.max_ape * 100.0
    );
    println!("(paper: MedianAPE 9%, MeanAPE 14%, worst-case under 50%)");
}
